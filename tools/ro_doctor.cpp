// ro-doctor — command-line front end for the closed false-sharing loop
// (src/ro/doctor).  Records a workload once, replays it under the simulator
// with a ContentionProfile attached, classifies the contended lines, plans
// a padding AddressRemap, and re-replays the *same* stored trace under the
// remap so the repair's effect is measured, not estimated.
//
//   ro-doctor diagnose [flags]   profile + ranked findings
//   ro-doctor repair   [flags]   diagnose + repair plan + verified re-replay
//   ro-doctor verify   [flags]   repair, then exit 1 unless the measured
//                                block-transfer reduction >= --require
//
// Workloads (recorded fresh each run, deterministic for a given size):
//   --workload=packed   k counters packed into adjacent words (stride 1) —
//                       the canonical false-sharing victim (SNIPPETS #1)
//   --workload=padded   the same counters at stride B — the healthy control
//   --workload=msum     divide-and-conquer sum — incidental sharing only
//
// Flags: --counters=N --iters=N --stride=N (overrides the workload default)
//        --n=N (msum size)  --p --M --B  --backend=sim-pws|sim-rws
//        --max-lines --min-events  --out=FILE (DoctorReport JSON)
//        --require=X (verify: required before/after transfer ratio)
#include <cstdio>
#include <fstream>
#include <string>

#include "ro/alg/counters.h"
#include "ro/alg/scan.h"
#include "ro/engine/engine.h"
#include "ro/util/check.h"
#include "ro/util/cli.h"
#include "ro/util/rng.h"

namespace {

using namespace ro;
using alg::i64;

auto prog_counters(uint32_t k, uint64_t iters, uint64_t stride) {
  return [=](auto& cx) {
    auto slots =
        cx.template alloc<i64>(alg::counter_words(k, stride), "counters");
    for (uint32_t c = 0; c < k; ++c) slots.raw()[c * stride] = 0;
    cx.run(uint64_t{k} * 2 * iters, [&] {
      alg::counter_stripes(cx, slots.slice(), k, iters, stride);
    });
  };
}

auto prog_msum(size_t n) {
  return [=](auto& cx) {
    auto a = cx.template alloc<i64>(n, "a");
    Rng rng(n);
    for (size_t i = 0; i < n; ++i)
      a.raw()[i] = static_cast<i64>(rng.next_below(100));
    auto out = cx.template alloc<i64>(1, "out");
    cx.run(n, [&] { alg::msum(cx, a.slice(), out.slice(), 1); });
  };
}

void print_findings(const doctor::DoctorReport& d) {
  if (d.findings.empty()) {
    std::printf("findings: none (no coherence invalidations recorded)\n");
    return;
  }
  std::printf("findings: %zu contended line(s)\n", d.findings.size());
  for (const doctor::LineFinding& f : d.findings) {
    std::printf(
        "  line 0x%llx  %-13s false=%llu true=%llu transfers=%llu "
        "coh_misses=%llu tasks=%u words=%zu\n",
        static_cast<unsigned long long>(f.line), pattern_name(f.pattern),
        static_cast<unsigned long long>(f.false_events),
        static_cast<unsigned long long>(f.true_events),
        static_cast<unsigned long long>(f.transfers),
        static_cast<unsigned long long>(f.coherence_misses), f.tasks,
        f.hot_words.size());
  }
}

void print_plan(const doctor::DoctorReport& d) {
  std::printf("plan: %llu line(s) padded, %llu false event(s) targeted\n",
              static_cast<unsigned long long>(d.plan.lines_padded),
              static_cast<unsigned long long>(d.plan.predicted_avoided_events));
  for (const RemapRule& r : d.plan.remap.rules()) {
    std::printf("  remap [0x%llx, +%llu) -> 0x%llx stride %llu\n",
                static_cast<unsigned long long>(r.src),
                static_cast<unsigned long long>(r.len),
                static_cast<unsigned long long>(r.dst),
                static_cast<unsigned long long>(r.stride));
  }
}

void print_verdict(const doctor::DoctorReport& d) {
  std::printf("before: block_transfers=%llu block_misses=%llu makespan=%llu\n",
              static_cast<unsigned long long>(d.before_block_transfers()),
              static_cast<unsigned long long>(d.before.sim.block_misses()),
              static_cast<unsigned long long>(d.before.sim.makespan));
  if (!d.has_after) {
    std::printf("after:  (no repair applied)\n");
    return;
  }
  std::printf(
      "after:  block_transfers=%llu block_misses=%llu makespan=%llu "
      "(%.2fx transfer reduction)\n",
      static_cast<unsigned long long>(d.after_block_transfers()),
      static_cast<unsigned long long>(d.after.sim.block_misses()),
      static_cast<unsigned long long>(d.after.sim.makespan),
      d.transfer_reduction());
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  std::string cmd =
      cli.positional().empty() ? "diagnose" : cli.positional()[0];
  if (cmd != "diagnose" && cmd != "repair" && cmd != "verify") {
    std::fprintf(stderr,
                 "usage: ro-doctor [diagnose|repair|verify] [--workload=...] "
                 "[--p=] [--M=] [--B=] [--out=FILE] [--require=X]\n");
    return 2;
  }

  SimConfig cfg;
  cfg.p = static_cast<uint32_t>(cli.get_int("p", 4));
  cfg.M = static_cast<uint64_t>(cli.get_int("M", 1 << 12));
  cfg.B = static_cast<uint32_t>(cli.get_int("B", 32));

  Backend backend = Backend::kSimPws;
  const std::string bname = cli.get_str("backend", "sim-pws");
  RO_CHECK_MSG(parse_backend(bname, backend) && backend_is_sim(backend),
               "ro-doctor replays traces: --backend must be sim-pws/sim-rws");

  doctor::DoctorOptions opt;
  opt.max_lines = static_cast<uint32_t>(cli.get_int("max-lines", 64));
  opt.min_false_events =
      static_cast<uint64_t>(cli.get_int("min-events", 1));

  const std::string workload = cli.get_str("workload", "packed");
  const uint32_t k = static_cast<uint32_t>(cli.get_int("counters", 8));
  const uint64_t iters = static_cast<uint64_t>(cli.get_int("iters", 64));
  const size_t n = static_cast<size_t>(cli.get_int("n", 1 << 12));

  // The doctor loop goes through the concurrent-caller submit API: one
  // JobSpec (kind=diagnose) plus the program, one JobResult back — the
  // same path a serve daemon or a programmatic caller takes.
  JobSpec spec;
  spec.kind = JobKind::kDiagnose;
  spec.opt.backend = backend;
  spec.opt.sim = cfg;
  spec.opt.label = "doctor-" + workload;
  spec.doc = opt;

  Engine eng;
  AnyProg prog;
  if (workload == "packed" || workload == "padded") {
    const uint64_t stride = static_cast<uint64_t>(
        cli.get_int("stride", workload == "packed" ? 1 : cfg.B));
    prog = prog_counters(k, iters, stride);
  } else if (workload == "msum") {
    prog = prog_msum(n);
  } else {
    std::fprintf(stderr, "unknown --workload=%s (packed|padded|msum)\n",
                 workload.c_str());
    return 2;
  }
  const JobResult jr = eng.submit(spec, prog);
  if (!jr.ok()) {
    std::fprintf(stderr, "ro-doctor: %s\n", jr.error.c_str());
    return 2;
  }
  const doctor::DoctorReport& d = jr.doctor;

  std::printf("ro-doctor %s: workload=%s backend=%s p=%u M=%llu B=%u\n",
              cmd.c_str(), workload.c_str(), backend_name(backend), cfg.p,
              static_cast<unsigned long long>(cfg.M), cfg.B);
  print_findings(d);
  if (cmd != "diagnose") {
    print_plan(d);
    print_verdict(d);
  }

  const std::string out = cli.get_str("out", "");
  if (!out.empty()) {
    std::ofstream f(out);
    RO_CHECK_MSG(f.good(), "cannot open --out file");
    f << d.to_json() << "\n";
    std::printf("wrote %s\n", out.c_str());
  }

  if (cmd == "verify") {
    const double require = cli.get_double("require", 2.0);
    if (d.plan.remap.empty()) {
      // Nothing repairable: healthy layouts pass verify trivially, but a
      // line the doctor saw yet could not fix is a failed verification.
      const bool healthy = d.findings.empty();
      std::printf("verify: %s (no repairable false sharing)\n",
                  healthy ? "PASS" : "FAIL");
      return healthy ? 0 : 1;
    }
    const double got = d.transfer_reduction();
    const bool pass = d.has_after && got >= require;
    std::printf("verify: %s (%.2fx transfer reduction, required %.2fx)\n",
                pass ? "PASS" : "FAIL", got, require);
    return pass ? 0 : 1;
  }
  return 0;
}
