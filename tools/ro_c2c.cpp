// ro-c2c — external-validity check for the simulator's block-transfer
// accounting, in the style of `perf c2c` (SNIPPETS #2): do the cache lines
// the simulator says bounce under false sharing actually bounce on this
// machine's coherence fabric?
//
// Two measurements of the same packed/padded counter pair (alg/counters.h):
//
//  * simulator: record each workload once, replay under sim-PWS, and read
//    the predicted block transfers (the simulated line bounces);
//  * hardware: run k real threads each hammering its own counter slot —
//    stride 1 packs all slots into one cache line (the false-sharing
//    adversary), stride B gives every thread a private line — while a
//    perf_event HITM counter (hit-modified snoops, the signature of a
//    line bouncing between cores) watches the process tree.
//
// External validity holds when both views agree in shape: packed >> padded.
// The absolute counts are incomparable (simulated words vs retired load
// events) — the ratio is the claim.
//
// The hardware half needs a PMU and permission to open it.  Sanitizer and
// container CI legs have neither, so every capability failure prints an
// explicit "skipped: no PMU" line and exits 0: the tool degrades to the
// simulator half, it never fails a leg that cannot measure.
//
//   $ ro-c2c [--threads=8] [--iters=2000000] [--sim-iters=2048]
//            [--p=8] [--M=4096] [--B=32] [--strict]
//
// --strict: exit 1 when the PMU is readable but the hardware disagrees
// with the simulator (packed/padded HITM ratio < --require, default 2).
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "ro/alg/counters.h"
#include "ro/engine/engine.h"
#include "ro/util/check.h"
#include "ro/util/cli.h"

namespace {

using namespace ro;
using alg::i64;

// ---- simulator half ----

auto prog_counters(uint32_t k, uint64_t iters, uint64_t stride) {
  return [=](auto& cx) {
    auto slots =
        cx.template alloc<i64>(alg::counter_words(k, stride), "counters");
    for (uint32_t c = 0; c < k; ++c) slots.raw()[c * stride] = 0;
    cx.run(uint64_t{k} * 2 * iters, [&] {
      alg::counter_stripes(cx, slots.slice(), k, iters, stride);
    });
  };
}

uint64_t sim_block_transfers(Engine& eng, uint32_t k, uint64_t iters,
                             uint64_t stride, const SimConfig& c) {
  RunOptions opt;
  opt.backend = Backend::kSimPws;
  opt.sim = c;
  opt.label = stride == 1 ? "c2c-packed" : "c2c-padded";
  const RunReport r = eng.run(prog_counters(k, iters, stride), opt);
  return r.sim.total_block_transfers;
}

// ---- hardware half ----

long perf_open(perf_event_attr& attr) {
  attr.size = sizeof(attr);
  attr.disabled = 1;
  attr.inherit = 1;  // count the worker threads we are about to spawn
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  return syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0);
}

struct HitmCounter {
  int fd = -1;
  const char* event = "";
};

// Opens the best available proxy for cross-core modified-line snoops:
// first the Intel XSNP_HITM retired-load event (raw 0xd2 umask 0x04, the
// same event `perf c2c` leans on), then the portable LL-read-miss cache
// event.  Both fire far more often when a modified line ping-pongs.
HitmCounter open_hitm() {
  HitmCounter h;
  perf_event_attr attr{};
  attr.type = PERF_TYPE_RAW;
  attr.config = 0x04d2;  // MEM_LOAD_*_RETIRED.XSNP_HITM (Intel)
  long fd = perf_open(attr);
  if (fd >= 0) {
    h.fd = static_cast<int>(fd);
    h.event = "xsnp-hitm (raw 0x04d2)";
    return h;
  }
  std::memset(&attr, 0, sizeof(attr));
  attr.type = PERF_TYPE_HW_CACHE;
  attr.config = PERF_COUNT_HW_CACHE_LL | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
                (PERF_COUNT_HW_CACHE_RESULT_MISS << 16);
  fd = perf_open(attr);
  if (fd >= 0) {
    h.fd = static_cast<int>(fd);
    h.event = "LLC-load-misses (HW_CACHE fallback)";
  }
  return h;
}

// k threads, each atomically bumping its own slot `iters` times.  stride 1
// packs every slot into one line; stride >= a line keeps them private.
// Returns the HITM-proxy count for the whole run, or UINT64_MAX when the
// counter could not be read.
uint64_t hw_counter_run(const HitmCounter& h, uint32_t k, uint64_t iters,
                        size_t stride_words) {
  const size_t words = (k - 1) * stride_words + 1;
  std::vector<std::atomic<int64_t>> slots(words);
  for (auto& s : slots) s.store(0, std::memory_order_relaxed);

  ioctl(h.fd, PERF_EVENT_IOC_RESET, 0);
  ioctl(h.fd, PERF_EVENT_IOC_ENABLE, 0);
  std::vector<std::thread> workers;
  workers.reserve(k);
  for (uint32_t c = 0; c < k; ++c) {
    workers.emplace_back([&slots, c, stride_words, iters] {
      std::atomic<int64_t>& slot = slots[c * stride_words];
      for (uint64_t i = 0; i < iters; ++i)
        slot.fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (auto& w : workers) w.join();
  ioctl(h.fd, PERF_EVENT_IOC_DISABLE, 0);

  for (uint32_t c = 0; c < k; ++c) {
    RO_CHECK_MSG(slots[c * stride_words].load() ==
                     static_cast<int64_t>(iters),
                 "counter kernel lost increments");
  }
  uint64_t count = 0;
  if (read(h.fd, &count, sizeof(count)) != sizeof(count)) return UINT64_MAX;
  return count;
}

double ratio(uint64_t packed, uint64_t padded) {
  return static_cast<double>(packed) /
         static_cast<double>(padded ? padded : 1);
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const unsigned hw = std::thread::hardware_concurrency();
  const uint32_t k = static_cast<uint32_t>(
      cli.get_int("threads", hw > 2 ? std::min(8u, hw) : 2));
  const uint64_t iters =
      static_cast<uint64_t>(cli.get_int("iters", 2'000'000));
  const uint64_t sim_iters =
      static_cast<uint64_t>(cli.get_int("sim-iters", 2048));
  // The simulated machine is free: default to 8 cores even on small hosts
  // so the packed layout has neighbors to bounce against.
  SimConfig c;
  c.p = static_cast<uint32_t>(cli.get_int("p", 8));
  c.M = static_cast<uint64_t>(cli.get_int("M", 1 << 12));
  c.B = static_cast<uint32_t>(cli.get_int("B", 32));
  // One line of padding in both views: B simulated words, and a real cache
  // line (64B = 8 i64 slots) on the hardware side.
  const uint64_t sim_pad = c.B;
  const size_t hw_pad = 64 / sizeof(int64_t);

  Engine eng;
  const uint64_t sim_packed = sim_block_transfers(eng, k, sim_iters, 1, c);
  const uint64_t sim_padded =
      sim_block_transfers(eng, k, sim_iters, sim_pad, c);
  std::printf("ro-c2c: simulator (p=%u, B=%u, %llu iters)\n", c.p, c.B,
              static_cast<unsigned long long>(sim_iters));
  std::printf("  packed  block transfers: %llu\n",
              static_cast<unsigned long long>(sim_packed));
  std::printf("  padded  block transfers: %llu\n",
              static_cast<unsigned long long>(sim_padded));
  std::printf("  predicted packed/padded: %.1fx\n",
              ratio(sim_packed, sim_padded));

  const HitmCounter h = open_hitm();
  if (h.fd < 0) {
    std::printf("ro-c2c: skipped: no PMU (perf_event_open: %s)\n",
                std::strerror(errno));
    return 0;
  }
  const uint64_t hw_packed = hw_counter_run(h, k, iters, 1);
  const uint64_t hw_padded = hw_counter_run(h, k, iters, hw_pad);
  close(h.fd);
  if (hw_packed == UINT64_MAX || hw_padded == UINT64_MAX) {
    std::printf("ro-c2c: skipped: no PMU (counter unreadable)\n");
    return 0;
  }
  if (hw_packed == 0 && hw_padded == 0) {
    std::printf("ro-c2c: skipped: no PMU (%s counted nothing)\n", h.event);
    return 0;
  }

  std::printf("ro-c2c: hardware (%u threads, %llu iters, %s)\n", k,
              static_cast<unsigned long long>(iters), h.event);
  std::printf("  packed  HITM events: %llu\n",
              static_cast<unsigned long long>(hw_packed));
  std::printf("  padded  HITM events: %llu\n",
              static_cast<unsigned long long>(hw_padded));
  const double hw_ratio = ratio(hw_packed, hw_padded);
  std::printf("  measured packed/padded: %.1fx\n", hw_ratio);

  const double require = cli.get_double("require", 2.0);
  const bool consistent = hw_ratio >= require;
  std::printf("ro-c2c: external validity: %s — simulator predicts %.1fx "
              "more line bounces for the packed layout, hardware shows "
              "%.1fx (threshold %.1fx)\n",
              consistent ? "CONSISTENT" : "INCONSISTENT",
              ratio(sim_packed, sim_padded), hw_ratio, require);
  if (!consistent && cli.has("strict")) return 1;
  return 0;
}
