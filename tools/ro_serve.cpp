// ro-serve — the long-lived multi-tenant Engine service CLI
// (src/ro/serve, docs/serve.md).
//
//   ro-serve start    --socket=PATH [--max-inflight=N]
//                     [--tenant-budget=BYTES]   (0 = unbounded)
//       Runs the daemon in the foreground until a client sends the
//       shutdown op (or the process gets SIGINT/SIGTERM).
//
//   ro-serve submit   --socket=PATH --workload=NAME [--n=N --seed=S]
//                     [--kind=run|batch|diagnose --shards=K]
//                     [--tenant=ID --tag=TEXT --backend=B --label=L]
//                     [--p --M --B --seq-baseline=0|1 --capacity-shared]
//                     [--spec=JSON | --spec-file=FILE]
//       Builds a JobSpec from flags (or takes one verbatim), submits it,
//       prints the JobResult JSON line, exits 0 iff status is "ok".
//
//   ro-serve stats    --socket=PATH    admission counters + jobs served
//   ro-serve shutdown --socket=PATH    stop the daemon
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "ro/serve/client.h"
#include "ro/serve/server.h"
#include "ro/util/cli.h"

namespace {

using namespace ro;

volatile std::sig_atomic_t g_signalled = 0;
void on_signal(int) { g_signalled = 1; }

int usage() {
  std::fprintf(stderr,
               "usage: ro-serve start|submit|stats|shutdown --socket=PATH "
               "[flags]\n       (see tools/ro_serve.cpp for the full list)\n");
  return 2;
}

int cmd_start(const Cli& cli, const std::string& socket) {
  serve::Server::Options opt;
  opt.socket_path = socket;
  opt.admission.max_inflight =
      static_cast<uint32_t>(cli.get_int("max-inflight", 4));
  opt.admission.tenant_budget_bytes =
      static_cast<uint64_t>(cli.get_int("tenant-budget", 0));
  serve::Server server(opt);
  std::string err;
  if (!server.start(&err)) {
    std::fprintf(stderr, "ro-serve: %s\n", err.c_str());
    return 1;
  }
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::printf("ro-serve: listening on %s (max-inflight=%u budget=%llu)\n",
              socket.c_str(), opt.admission.max_inflight,
              static_cast<unsigned long long>(opt.admission.tenant_budget_bytes));
  std::fflush(stdout);
  while (server.running() && g_signalled == 0) ::usleep(50 * 1000);
  server.stop();
  std::printf("ro-serve: stopped after %llu job(s)\n",
              static_cast<unsigned long long>(server.jobs_served()));
  return 0;
}

bool spec_from_cli(const Cli& cli, JobSpec& spec, std::string& err) {
  const std::string inline_spec = cli.get_str("spec", "");
  const std::string spec_file = cli.get_str("spec-file", "");
  if (!inline_spec.empty() || !spec_file.empty()) {
    std::string text = inline_spec;
    if (!spec_file.empty()) {
      std::ifstream in(spec_file);
      if (!in) {
        err = "cannot read " + spec_file;
        return false;
      }
      std::ostringstream ss;
      ss << in.rdbuf();
      text = ss.str();
    }
    return jobspec_from_json(text, spec, &err);
  }
  spec.tenant = cli.get_str("tenant", "");
  spec.tag = cli.get_str("tag", "");
  if (!parse_job_kind(cli.get_str("kind", "run"), spec.kind)) {
    err = "unknown --kind";
    return false;
  }
  spec.workload = cli.get_str("workload", "msum");
  spec.n = static_cast<uint64_t>(cli.get_int("n", 1 << 12));
  spec.seed = static_cast<uint64_t>(cli.get_int("seed", 0));
  spec.shards = static_cast<uint32_t>(cli.get_int("shards", 1));
  if (!parse_backend(cli.get_str("backend", "sim-pws"), spec.opt.backend)) {
    err = "unknown --backend";
    return false;
  }
  spec.opt.label = cli.get_str("label", spec.workload);
  spec.opt.sim.p = static_cast<uint32_t>(cli.get_int("p", spec.opt.sim.p));
  spec.opt.sim.M = static_cast<uint64_t>(cli.get_int("M", spec.opt.sim.M));
  spec.opt.sim.B = static_cast<uint64_t>(cli.get_int("B", spec.opt.sim.B));
  spec.opt.sim.replay_threads = static_cast<uint32_t>(
      cli.get_int("replay-threads", spec.opt.sim.replay_threads));
  spec.opt.seq_baseline = cli.get_int("seq-baseline", 1) != 0;
  spec.opt.pipeline = cli.get_int("pipeline", 0) != 0;
  spec.opt.capacity_shared =
      cli.has("capacity-shared") && cli.get_int("capacity-shared", 1) != 0;
  return true;
}

int cmd_submit(const Cli& cli, const std::string& socket) {
  JobSpec spec;
  std::string err;
  if (!spec_from_cli(cli, spec, err)) {
    std::fprintf(stderr, "ro-serve: %s\n", err.c_str());
    return 2;
  }
  serve::Client client;
  if (!client.connect(socket, &err)) {
    std::fprintf(stderr, "ro-serve: %s\n", err.c_str());
    return 1;
  }
  JobResult jr;
  if (!client.submit(spec, jr)) {
    std::fprintf(stderr, "ro-serve: connection lost mid-submit\n");
    return 1;
  }
  std::printf("%s\n", jr.to_json().c_str());
  return jr.ok() ? 0 : 1;
}

int cmd_stats(const std::string& socket) {
  serve::Client client;
  std::string err;
  if (!client.connect(socket, &err)) {
    std::fprintf(stderr, "ro-serve: %s\n", err.c_str());
    return 1;
  }
  std::string reply;
  if (!client.exchange("{\"op\":\"stats\"}", reply)) {
    std::fprintf(stderr, "ro-serve: connection lost\n");
    return 1;
  }
  std::printf("%s\n", reply.c_str());
  return 0;
}

int cmd_shutdown(const std::string& socket) {
  serve::Client client;
  std::string err;
  if (!client.connect(socket, &err)) {
    std::fprintf(stderr, "ro-serve: %s\n", err.c_str());
    return 1;
  }
  if (!client.shutdown()) {
    std::fprintf(stderr, "ro-serve: shutdown not acknowledged\n");
    return 1;
  }
  std::printf("ro-serve: shutdown acknowledged\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  if (cli.positional().empty()) return usage();
  const std::string cmd = cli.positional()[0];
  const std::string socket = cli.get_str("socket", "/tmp/ro-serve.sock");
  if (cmd == "start") return cmd_start(cli, socket);
  if (cmd == "submit") return cmd_submit(cli, socket);
  if (cmd == "stats") return cmd_stats(socket);
  if (cmd == "shutdown") return cmd_shutdown(socket);
  return usage();
}
