// Quickstart: one resource-oblivious algorithm, five execution backends,
// one RunOptions change — the core workflow of this library.
//
//   $ ./quickstart [--n=65536] [--p=8] [--M=4096] [--B=64]
//
// Steps shown:
//   1. write the computation once as a program over a generic context,
//   2. run it through ro::Engine on every backend: direct sequential,
//      simulated PWS / RWS replay (the paper's machine), and real threads
//      under both steal policies,
//   3. read the unified RunReport: outputs are real and checked on every
//      backend, the sim rows carry the paper's observables, and everything
//      serializes to JSON.
#include <cstdio>
#include <vector>

#include "ro/alg/scan.h"
#include "ro/engine/engine.h"
#include "ro/util/cli.h"
#include "ro/util/table.h"

using namespace ro;
using alg::i64;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const size_t n = static_cast<size_t>(cli.get_int("n", 1 << 16));

  // 1. The program: allocation, input build, one cx.run(...).  The
  // algorithm never sees p, M or B (resource oblivious) — and never sees
  // which backend it is on either.
  std::vector<i64> result;
  auto prog = [&](auto& cx) {
    auto a = cx.template alloc<i64>(n, "input");
    for (size_t i = 0; i < n; ++i) a.raw()[i] = static_cast<i64>(i % 10);
    auto out = cx.template alloc<i64>(n, "output");
    cx.run(2 * n, [&] { alg::prefix_sums(cx, a.slice(), out.slice()); });
    result.assign(out.raw(), out.raw() + n);
  };

  // 2. One Engine, five backends.
  Engine eng;
  RunOptions opt;
  opt.sim.p = static_cast<uint32_t>(cli.get_int("p", 8));
  opt.sim.M = static_cast<uint64_t>(cli.get_int("M", 1 << 12));
  opt.sim.B = static_cast<uint32_t>(cli.get_int("B", 64));

  Table t("prefix sums, n=" + Table::num(static_cast<uint64_t>(n)) +
          " — every backend (sim machine: p=" + Table::num(opt.sim.p) +
          ", M=" + Table::num(opt.sim.M) + ", B=" + Table::num(opt.sim.B) +
          ")");
  t.header({"backend", "wall-ms", "makespan", "speedup", "cache-miss",
            "block-miss", "steals", "usurpations"});
  for (Backend b : kAllBackends) {
    opt.backend = b;  // the single change
    const RunReport r = eng.run(prog, opt);

    // 3. Outputs are real on every backend — verify.
    i64 run = 0;
    for (size_t i = 0; i < n; ++i) {
      run += static_cast<i64>(i % 10);
      RO_CHECK(result[i] == run);
    }
    t.row({backend_name(b), Table::num(r.wall_ms),
           r.has_sim ? Table::num(r.sim.makespan) : "-",
           r.has_baseline ? Table::num(r.sim_speedup()) + "x" : "-",
           r.has_sim ? Table::num(r.sim.cache_misses()) : "-",
           r.has_sim ? Table::num(r.sim.block_misses()) : "-",
           r.has_sim    ? Table::num(r.sim.steals())
           : r.has_pool ? Table::num(r.pool_steals)
                        : "-",
           r.has_sim ? Table::num(r.sim.usurpations()) : "-"});
    if (b == Backend::kSimPws) {
      std::printf("RunReport JSON (sim-pws):\n%s\n\n", r.to_json().c_str());
    }
  }
  t.print();
  std::printf(
      "\nThe sim rows replay one recorded trace on the paper's machine; the\n"
      "sim-pws cache misses stay near the sequential cache complexity\n"
      "Q(n, M, B) — the paper's headline property.  The par rows run the\n"
      "same program on hardware threads through the work-stealing pool.\n");
  return 0;
}
