// Quickstart: record a resource-oblivious computation once, then replay it
// on any simulated multicore — the core workflow of this library.
//
//   $ ./quickstart [--n=65536] [--p=8] [--M=4096] [--B=64]
//
// Steps shown:
//   1. allocate inputs in the recording context (TraceCtx),
//   2. run an HBP algorithm (prefix sums) — outputs are real and checked,
//   3. replay the recorded trace sequentially (giving Q(n,M,B)) and under
//      the PWS / RWS schedulers, printing the paper's observables.
#include <cstdio>

#include "ro/alg/scan.h"
#include "ro/core/trace_ctx.h"
#include "ro/sched/run.h"
#include "ro/util/cli.h"
#include "ro/util/table.h"

using namespace ro;
using alg::i64;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const size_t n = static_cast<size_t>(cli.get_int("n", 1 << 16));
  const uint32_t p = static_cast<uint32_t>(cli.get_int("p", 8));

  // 1. Record: the algorithm never sees p, M or B (resource oblivious).
  TraceCtx cx;
  auto a = cx.alloc<i64>(n, "input");
  for (size_t i = 0; i < n; ++i) a.raw()[i] = static_cast<i64>(i % 10);
  auto out = cx.alloc<i64>(n, "output");
  TaskGraph g = cx.run(2 * n, [&] {
    alg::prefix_sums(cx, a.slice(), out.slice());
  });

  // 2. The outputs are real — verify.
  i64 run = 0;
  for (size_t i = 0; i < n; ++i) {
    run += a.raw()[i];
    RO_CHECK(out.raw()[i] == run);
  }
  const GraphStats st = g.analyze();
  std::printf("recorded prefix sums: n=%zu  work=%llu  span=%llu  "
              "parallelism=%.1f\n\n",
              n, static_cast<unsigned long long>(st.work),
              static_cast<unsigned long long>(st.span),
              static_cast<double>(st.work) / st.span);

  // 3. Replay on machines of the user's choosing.
  SimConfig cfg;
  cfg.p = p;
  cfg.M = static_cast<uint64_t>(cli.get_int("M", 1 << 12));
  cfg.B = static_cast<uint32_t>(cli.get_int("B", 64));

  Table t("replay on p=" + Table::num(static_cast<uint64_t>(p)) +
          " cores, M=" + Table::num(cfg.M) + " words, B=" +
          Table::num(static_cast<uint64_t>(cfg.B)));
  t.header({"scheduler", "makespan", "speedup", "cache-miss", "block-miss",
            "steals", "usurpations"});
  const Metrics seq = simulate(g, SchedKind::kSeq, cfg);
  for (auto kind : {SchedKind::kSeq, SchedKind::kPws, SchedKind::kRws}) {
    const Metrics m = simulate(g, kind, cfg);
    char sp[16];
    std::snprintf(sp, sizeof sp, "%.2fx",
                  static_cast<double>(seq.makespan) / m.makespan);
    t.row({sched_name(kind), Table::num(m.makespan), sp,
           Table::num(m.cache_misses()), Table::num(m.block_misses()),
           Table::num(m.steals()), Table::num(m.usurpations())});
  }
  t.print();
  std::printf(
      "\nThe SEQ row's cache misses are the sequential cache complexity\n"
      "Q(n, M, B); PWS keeps the parallel miss totals near Q — the paper's\n"
      "headline property.\n");
  return 0;
}
