// Signal analysis with the resource-oblivious FFT: build a noisy multi-tone
// signal, compute its spectrum with the six-step HBP FFT through the
// Engine, report the detected tones, and show the scheduler costs of the
// transform.
//
//   $ ./signal_spectrum [--n=4096] [--p=8] [--tones=3]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "ro/alg/fft.h"
#include "ro/engine/engine.h"
#include "ro/util/cli.h"
#include "ro/util/rng.h"
#include "ro/util/table.h"

using namespace ro;
using alg::cplx;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const size_t n = static_cast<size_t>(cli.get_int("n", 4096));
  const uint32_t p = static_cast<uint32_t>(cli.get_int("p", 8));
  const int tones = static_cast<int>(cli.get_int("tones", 3));
  RO_CHECK(is_pow2(n));

  // Compose the signal: `tones` sinusoids + white noise.
  Rng rng(42);
  std::vector<size_t> freqs;
  std::vector<double> amps;
  for (int t = 0; t < tones; ++t) {
    freqs.push_back(1 + rng.next_below(n / 2 - 1));
    amps.push_back(1.0 + static_cast<double>(t));
  }
  std::vector<double> signal(n);
  for (size_t j = 0; j < n; ++j) {
    double v = 0.1 * (rng.next_double() - 0.5);  // noise floor
    for (int t = 0; t < tones; ++t) {
      v += amps[t] *
           std::cos(2 * M_PI * static_cast<double>(freqs[t] * j) / n);
    }
    signal[j] = v;
  }

  // Record the transform through the Engine; the spectrum is copied out of
  // the program so it can be analyzed after the run.
  std::vector<cplx> spectrum;
  Engine eng;
  const Recording rec = eng.record([&](auto& cx) {
    auto x = cx.template alloc<cplx>(n, "signal");
    for (size_t j = 0; j < n; ++j) x.raw()[j] = cplx(signal[j], 0.0);
    auto y = cx.template alloc<cplx>(n, "spectrum");
    cx.run(4 * n, [&] { alg::fft(cx, x.slice(), y.slice()); });
    spectrum.assign(y.raw(), y.raw() + n);
  });

  // Peak picking (real signal -> look at bins < n/2; magnitude ~ amp*n/2).
  Table peaks("detected tones (true tones: " + Table::num(tones) + ")");
  peaks.header({"bin", "magnitude/n", "expected-amp/2"});
  std::vector<std::pair<double, size_t>> mag;
  for (size_t k = 1; k < n / 2; ++k) {
    mag.push_back({std::abs(spectrum[k]), k});
  }
  std::sort(mag.rbegin(), mag.rend());
  for (int t = 0; t < tones; ++t) {
    const size_t bin = mag[t].second;
    double expect = 0;
    for (int q = 0; q < tones; ++q) {
      if (freqs[q] == bin) expect = amps[q] / 2;
    }
    peaks.row({Table::num(static_cast<uint64_t>(bin)),
               Table::num(mag[t].first / n), Table::num(expect)});
  }
  peaks.print();

  // Scheduler costs of the transform, via one replay with baseline.
  SimConfig cfg;
  cfg.p = p;
  cfg.M = 1 << 12;
  cfg.B = 32;
  const RunReport r = eng.replay(rec, Backend::kSimPws, cfg);
  std::printf("\nFFT n=%zu on p=%u simulated cores:\n  PWS %s\n", n, p,
              r.sim.summary().c_str());
  std::printf("  simulated speedup: %.2fx\n", r.sim_speedup());
  return 0;
}
