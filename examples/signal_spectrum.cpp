// Signal analysis with the resource-oblivious FFT: build a noisy multi-tone
// signal, compute its spectrum with the six-step HBP FFT, report the
// detected tones, and show the scheduler costs of the transform.
//
//   $ ./signal_spectrum [--n=4096] [--p=8] [--tones=3]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "ro/alg/fft.h"
#include "ro/core/trace_ctx.h"
#include "ro/sched/run.h"
#include "ro/util/cli.h"
#include "ro/util/rng.h"
#include "ro/util/table.h"

using namespace ro;
using alg::cplx;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const size_t n = static_cast<size_t>(cli.get_int("n", 4096));
  const uint32_t p = static_cast<uint32_t>(cli.get_int("p", 8));
  const int tones = static_cast<int>(cli.get_int("tones", 3));
  RO_CHECK(is_pow2(n));

  // Compose the signal: `tones` sinusoids + white noise.
  Rng rng(42);
  std::vector<size_t> freqs;
  std::vector<double> amps;
  for (int t = 0; t < tones; ++t) {
    freqs.push_back(1 + rng.next_below(n / 2 - 1));
    amps.push_back(1.0 + static_cast<double>(t));
  }
  TraceCtx cx;
  auto x = cx.alloc<cplx>(n, "signal");
  for (size_t j = 0; j < n; ++j) {
    double v = 0.1 * (rng.next_double() - 0.5);  // noise floor
    for (int t = 0; t < tones; ++t) {
      v += amps[t] *
           std::cos(2 * M_PI * static_cast<double>(freqs[t] * j) / n);
    }
    x.raw()[j] = cplx(v, 0.0);
  }
  auto y = cx.alloc<cplx>(n, "spectrum");
  TaskGraph g = cx.run(4 * n, [&] { alg::fft(cx, x.slice(), y.slice()); });

  // Peak picking (real signal -> look at bins < n/2; magnitude ~ amp*n/2).
  Table peaks("detected tones (true tones: " + Table::num(tones) + ")");
  peaks.header({"bin", "magnitude/n", "expected-amp/2"});
  std::vector<std::pair<double, size_t>> mag;
  for (size_t k = 1; k < n / 2; ++k) {
    mag.push_back({std::abs(y.raw()[k]), k});
  }
  std::sort(mag.rbegin(), mag.rend());
  for (int t = 0; t < tones; ++t) {
    const size_t bin = mag[t].second;
    double expect = 0;
    for (int q = 0; q < tones; ++q) {
      if (freqs[q] == bin) expect = amps[q] / 2;
    }
    peaks.row({Table::num(static_cast<uint64_t>(bin)),
               Table::num(mag[t].first / n), Table::num(expect)});
  }
  peaks.print();

  // Scheduler costs of the transform.
  SimConfig cfg;
  cfg.p = p;
  cfg.M = 1 << 12;
  cfg.B = 32;
  const Metrics seq = simulate(g, SchedKind::kSeq, cfg);
  const Metrics pws = simulate(g, SchedKind::kPws, cfg);
  std::printf("\nFFT n=%zu on p=%u simulated cores:\n  SEQ %s\n  PWS %s\n",
              n, p, seq.summary().c_str(), pws.summary().c_str());
  std::printf("  simulated speedup: %.2fx\n",
              static_cast<double>(seq.makespan) / pws.makespan);
  return 0;
}
