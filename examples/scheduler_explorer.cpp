// Scheduler explorer: pick an algorithm and a machine, get the full metric
// breakdown — the tool a downstream user reaches for to understand how
// their workload behaves under PWS vs RWS on hypothetical multicores.
//
//   $ ./scheduler_explorer --alg=fft --n=4096 --p=16 --M=8192 --B=64
//   algorithms: msum ps mt rm2bi bi2rm bi2rm_gap strassen mm fft sort lr cc
//
// The workload is a single program over a generic context; the Engine
// records it once and replays the trace on each scheduler.
#include <cstdio>
#include <string>

#include "ro/alg/cc.h"
#include "ro/alg/fft.h"
#include "ro/alg/graphgen.h"
#include "ro/alg/listrank.h"
#include "ro/alg/mm.h"
#include "ro/alg/mt.h"
#include "ro/alg/rm_bi.h"
#include "ro/alg/scan.h"
#include "ro/alg/sort.h"
#include "ro/alg/strassen.h"
#include "ro/core/validate.h"
#include "ro/engine/engine.h"
#include "ro/util/cli.h"
#include "ro/util/table.h"

using namespace ro;
using alg::i64;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::string name = cli.get_str("alg", "fft");
  const size_t n = static_cast<size_t>(cli.get_int("n", 1 << 12));
  SimConfig cfg;
  cfg.p = static_cast<uint32_t>(cli.get_int("p", 8));
  cfg.M = static_cast<uint64_t>(cli.get_int("M", 1 << 12));
  cfg.B = static_cast<uint32_t>(cli.get_int("B", 32));
  cfg.miss_latency = static_cast<uint32_t>(cli.get_int("b", 32));

  // One program, dispatching on the algorithm name; recorded through the
  // Engine below.
  bool known = true;
  auto prog = [&](auto& cx) {
    const uint32_t side = static_cast<uint32_t>(next_pow2(isqrt(n)));
    if (name == "msum") {
      auto a = cx.template alloc<i64>(n, "a");
      auto o = cx.template alloc<i64>(1, "o");
      cx.run(n, [&] { alg::msum(cx, a.slice(), o.slice()); });
      return;
    }
    if (name == "ps") {
      auto a = cx.template alloc<i64>(n, "a");
      auto o = cx.template alloc<i64>(n, "o");
      cx.run(2 * n, [&] { alg::prefix_sums(cx, a.slice(), o.slice()); });
      return;
    }
    const size_t m = static_cast<size_t>(side) * side;
    if (name == "mt" || name == "rm2bi" || name == "bi2rm" ||
        name == "bi2rm_gap") {
      auto a = cx.template alloc<i64>(m, "a");
      auto o = cx.template alloc<i64>(m, "o");
      cx.run(2 * m, [&] {
        if (name == "mt") alg::mt_bi(cx, a.slice(), o.slice(), side);
        if (name == "rm2bi") alg::rm_to_bi(cx, a.slice(), o.slice(), side);
        if (name == "bi2rm")
          alg::bi_to_rm_direct(cx, a.slice(), o.slice(), side);
        if (name == "bi2rm_gap")
          alg::bi_to_rm_gap(cx, a.slice(), o.slice(), side);
      });
      return;
    }
    if (name == "strassen" || name == "mm") {
      const uint32_t s = std::min<uint32_t>(side, 64);
      const size_t sm = static_cast<size_t>(s) * s;
      auto a = cx.template alloc<i64>(sm, "a");
      auto b = cx.template alloc<i64>(sm, "b");
      auto c = cx.template alloc<i64>(sm, "c");
      cx.run(3 * sm, [&] {
        if (name == "strassen")
          alg::strassen_bi(cx, a.slice(), b.slice(), c.slice(), s);
        else
          alg::depth_n_mm(cx, a.slice(), b.slice(), c.slice(), s);
      });
      return;
    }
    if (name == "fft") {
      auto x = cx.template alloc<alg::cplx>(n, "x");
      auto y = cx.template alloc<alg::cplx>(n, "y");
      cx.run(4 * n, [&] { alg::fft(cx, x.slice(), y.slice()); });
      return;
    }
    if (name == "sort") {
      auto a = cx.template alloc<i64>(n, "a");
      Rng rng(1);
      for (size_t i = 0; i < n; ++i)
        a.raw()[i] = static_cast<i64>(rng.next());
      auto o = cx.template alloc<i64>(n, "o");
      cx.run(2 * n, [&] { alg::msort(cx, a.slice(), o.slice()); });
      return;
    }
    if (name == "lr") {
      const auto succ = alg::random_list(n, 5);
      auto s = cx.template alloc<i64>(n, "s");
      std::copy(succ.begin(), succ.end(), s.raw());
      auto r = cx.template alloc<i64>(n, "r");
      cx.run(2 * n, [&] { alg::list_rank(cx, s.slice(), r.slice()); });
      return;
    }
    if (name == "cc") {
      const auto e = alg::random_graph(n, n, 4, 11);
      auto eu = cx.template alloc<i64>(e.u.size(), "eu");
      auto ev = cx.template alloc<i64>(e.u.size(), "ev");
      std::copy(e.u.begin(), e.u.end(), eu.raw());
      std::copy(e.v.begin(), e.v.end(), ev.raw());
      auto l = cx.template alloc<i64>(n, "l");
      cx.run(4 * n, [&] {
        alg::connected_components(cx, n, eu.slice(), ev.slice(), l.slice());
      });
      return;
    }
    known = false;
  };

  Engine eng;
  const Recording rec = eng.record(prog);
  if (!known) {
    std::fprintf(stderr, "unknown --alg=%s\n", name.c_str());
    return 2;
  }
  const GraphStats& st = rec.stats;
  const auto la = check_limited_access(rec.graph);
  std::printf("%s: n=%zu  activations=%llu  work=%llu  span=%llu  "
              "parallelism=%.1f  max-writes/loc=%u\n\n",
              name.c_str(), n,
              static_cast<unsigned long long>(st.activations),
              static_cast<unsigned long long>(st.work),
              static_cast<unsigned long long>(st.span),
              static_cast<double>(st.work) / st.span,
              la.max_writes_per_location);

  Table t("machine: p=" + Table::num(cfg.p) + " M=" + Table::num(cfg.M) +
          " B=" + Table::num(cfg.B) + " b=" + Table::num(cfg.miss_latency));
  t.header({"sched", "makespan", "speedup", "cache(cold/cap)", "block-miss",
            "stack-miss", "steals", "attempts", "usurp", "idle"});
  for (Backend b : {Backend::kSeq, Backend::kSimPws, Backend::kSimRws}) {
    const RunReport r = eng.replay(rec, b, cfg);
    const Metrics& m = r.sim;
    char sp[16];
    std::snprintf(sp, sizeof sp, "%.2fx",
                  static_cast<double>(r.seq_makespan) / m.makespan);
    uint64_t cold = 0, cap = 0;
    for (const auto& c : m.core) {
      cold += c.misses(MissClass::kCold);
      cap += c.misses(MissClass::kCapacity);
    }
    t.row({backend_name(b), Table::num(m.makespan), sp,
           Table::num(cold) + "/" + Table::num(cap),
           Table::num(m.block_misses()), Table::num(m.stack_misses()),
           Table::num(m.steals()), Table::num(m.steal_attempts()),
           Table::num(m.usurpations()), Table::num(m.idle())});
  }
  t.print();
  return 0;
}
