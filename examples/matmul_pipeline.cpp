// A full matrix pipeline in the paper's intended composition: the input
// arrives row-major, is converted to bit-interleaved, multiplied with
// Strassen (all-BI, O(1) block sharing), and converted back with the gapped
// BI→RM conversion — then validated against the naive product.  Recorded
// once through the Engine, replayed under both schedulers.
//
//   $ ./matmul_pipeline [--side=64] [--p=8]
#include <algorithm>
#include <cstdio>
#include <vector>

#include "ro/alg/layout.h"
#include "ro/alg/rm_bi.h"
#include "ro/alg/strassen.h"
#include "ro/engine/engine.h"
#include "ro/util/cli.h"
#include "ro/util/rng.h"
#include "ro/util/table.h"

using namespace ro;
using alg::i64;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const uint32_t n = static_cast<uint32_t>(cli.get_int("side", 64));
  const uint32_t p = static_cast<uint32_t>(cli.get_int("p", 8));
  RO_CHECK(is_pow2(n));
  const size_t m = static_cast<size_t>(n) * n;

  // Row-major inputs.
  std::vector<i64> a_rm(m), b_rm(m);
  Rng rng(99);
  for (size_t i = 0; i < m; ++i) {
    a_rm[i] = static_cast<i64>(rng.next_below(19)) - 9;
    b_rm[i] = static_cast<i64>(rng.next_below(19)) - 9;
  }

  Engine eng;
  std::vector<i64> c_out;
  const Recording rec = eng.record([&](auto& cx) {
    auto a = cx.template alloc<i64>(m, "A.rm");
    auto b = cx.template alloc<i64>(m, "B.rm");
    std::copy(a_rm.begin(), a_rm.end(), a.raw());
    std::copy(b_rm.begin(), b_rm.end(), b.raw());
    auto abi = cx.template alloc<i64>(m, "A.bi");
    auto bbi = cx.template alloc<i64>(m, "B.bi");
    auto cbi = cx.template alloc<i64>(m, "C.bi");
    auto c_rm = cx.template alloc<i64>(m, "C.rm");
    cx.run(8 * m, [&] {
      alg::rm_to_bi(cx, a.slice(), abi.slice(), n);
      alg::rm_to_bi(cx, b.slice(), bbi.slice(), n);
      alg::strassen_bi(cx, abi.slice(), bbi.slice(), cbi.slice(), n, 4);
      alg::bi_to_rm_gap(cx, cbi.slice(), c_rm.slice(), n);
    });
    c_out.assign(c_rm.raw(), c_rm.raw() + m);
  });

  // Validate against the naive product.
  size_t bad = 0;
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = 0; j < n; ++j) {
      i64 want = 0;
      for (uint32_t k = 0; k < n; ++k) {
        want += a_rm[alg::rm_index(n, i, k)] * b_rm[alg::rm_index(n, k, j)];
      }
      if (c_out[alg::rm_index(n, i, j)] != want) ++bad;
    }
  }
  RO_CHECK(bad == 0);
  const GraphStats& st = rec.stats;
  std::printf("pipeline RM->BI -> Strassen -> gapped BI->RM on %ux%u: "
              "validated.\n  work=%llu  span=%llu  parallelism=%.1f\n",
              n, n, static_cast<unsigned long long>(st.work),
              static_cast<unsigned long long>(st.span),
              static_cast<double>(st.work) / st.span);

  Table t("pipeline under the schedulers (M=4096 words, B=32)");
  t.header({"sched", "p", "makespan", "speedup", "cache-miss", "block-miss"});
  SimConfig cfg;
  cfg.M = 1 << 12;
  cfg.B = 32;
  for (uint32_t pp : {2u, p}) {
    cfg.p = pp;
    for (Backend b : {Backend::kSimPws, Backend::kSimRws}) {
      const RunReport r = eng.replay(rec, b, cfg);
      char sp[16];
      std::snprintf(sp, sizeof sp, "%.2fx", r.sim_speedup());
      t.row({backend_name(b), Table::num(pp), Table::num(r.sim.makespan), sp,
             Table::num(r.sim.cache_misses()),
             Table::num(r.sim.block_misses())});
    }
  }
  t.print();
  return 0;
}
