// A full matrix pipeline in the paper's intended composition: the input
// arrives row-major, is converted to bit-interleaved, multiplied with
// Strassen (all-BI, O(1) block sharing), and converted back with the gapped
// BI→RM conversion — then validated against the naive product.
//
//   $ ./matmul_pipeline [--side=64] [--p=8]
#include <algorithm>
#include <cstdio>
#include <vector>

#include "ro/alg/layout.h"
#include "ro/alg/rm_bi.h"
#include "ro/alg/strassen.h"
#include "ro/core/trace_ctx.h"
#include "ro/sched/run.h"
#include "ro/util/cli.h"
#include "ro/util/rng.h"
#include "ro/util/table.h"

using namespace ro;
using alg::i64;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const uint32_t n = static_cast<uint32_t>(cli.get_int("side", 64));
  const uint32_t p = static_cast<uint32_t>(cli.get_int("p", 8));
  RO_CHECK(is_pow2(n));
  const size_t m = static_cast<size_t>(n) * n;

  // Row-major inputs.
  std::vector<i64> a_rm(m), b_rm(m);
  Rng rng(99);
  for (size_t i = 0; i < m; ++i) {
    a_rm[i] = static_cast<i64>(rng.next_below(19)) - 9;
    b_rm[i] = static_cast<i64>(rng.next_below(19)) - 9;
  }

  TraceCtx cx;
  auto a = cx.alloc<i64>(m, "A.rm");
  auto b = cx.alloc<i64>(m, "B.rm");
  std::copy(a_rm.begin(), a_rm.end(), a.raw());
  std::copy(b_rm.begin(), b_rm.end(), b.raw());
  auto abi = cx.alloc<i64>(m, "A.bi");
  auto bbi = cx.alloc<i64>(m, "B.bi");
  auto cbi = cx.alloc<i64>(m, "C.bi");
  auto c_rm = cx.alloc<i64>(m, "C.rm");

  TaskGraph g = cx.run(8 * m, [&] {
    alg::rm_to_bi(cx, a.slice(), abi.slice(), n);
    alg::rm_to_bi(cx, b.slice(), bbi.slice(), n);
    alg::strassen_bi(cx, abi.slice(), bbi.slice(), cbi.slice(), n, 4);
    alg::bi_to_rm_gap(cx, cbi.slice(), c_rm.slice(), n);
  });

  // Validate against the naive product.
  size_t bad = 0;
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = 0; j < n; ++j) {
      i64 want = 0;
      for (uint32_t k = 0; k < n; ++k) {
        want += a_rm[alg::rm_index(n, i, k)] * b_rm[alg::rm_index(n, k, j)];
      }
      if (c_rm.raw()[alg::rm_index(n, i, j)] != want) ++bad;
    }
  }
  RO_CHECK(bad == 0);
  const GraphStats st = g.analyze();
  std::printf("pipeline RM->BI -> Strassen -> gapped BI->RM on %ux%u: "
              "validated.\n  work=%llu  span=%llu  parallelism=%.1f\n",
              n, n, static_cast<unsigned long long>(st.work),
              static_cast<unsigned long long>(st.span),
              static_cast<double>(st.work) / st.span);

  Table t("pipeline under the schedulers (M=4096 words, B=32)");
  t.header({"sched", "p", "makespan", "speedup", "cache-miss", "block-miss"});
  SimConfig cfg;
  cfg.M = 1 << 12;
  cfg.B = 32;
  cfg.p = 1;
  const Metrics seq = simulate(g, SchedKind::kSeq, cfg);
  for (uint32_t pp : {2u, p}) {
    cfg.p = pp;
    for (auto kind : {SchedKind::kPws, SchedKind::kRws}) {
      const Metrics mm = simulate(g, kind, cfg);
      char sp[16];
      std::snprintf(sp, sizeof sp, "%.2fx",
                    static_cast<double>(seq.makespan) / mm.makespan);
      t.row({sched_name(kind), Table::num(pp), Table::num(mm.makespan), sp,
             Table::num(mm.cache_misses()), Table::num(mm.block_misses())});
    }
  }
  t.print();
  return 0;
}
