// Connected components of a random graph with the resource-oblivious CC
// algorithm, validated against union-find, plus the Euler-tour toolkit on a
// random tree (parents + depths via weighted list ranking).  Both run
// through the Engine: record once, inspect real outputs, replay on the
// simulated machine.
//
//   $ ./graph_components [--n=400] [--extra=300] [--groups=5] [--p=8]
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "ro/alg/cc.h"
#include "ro/alg/euler.h"
#include "ro/alg/graphgen.h"
#include "ro/engine/engine.h"
#include "ro/util/cli.h"
#include "ro/util/table.h"

using namespace ro;
using alg::i64;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const size_t n = static_cast<size_t>(cli.get_int("n", 400));
  const size_t extra = static_cast<size_t>(cli.get_int("extra", 300));
  const size_t groups = static_cast<size_t>(cli.get_int("groups", 5));
  const uint32_t p = static_cast<uint32_t>(cli.get_int("p", 8));

  // ---- connected components ----
  const auto e = alg::random_graph(n, extra, groups, 2026);
  const auto want = alg::cc_ref(n, e);
  const size_t m = e.u.size();

  Engine eng;
  std::vector<i64> labels;
  const Recording rec = eng.record([&](auto& cx) {
    auto eu = cx.template alloc<i64>(m, "eu");
    auto ev = cx.template alloc<i64>(m, "ev");
    std::copy(e.u.begin(), e.u.end(), eu.raw());
    std::copy(e.v.begin(), e.v.end(), ev.raw());
    auto label = cx.template alloc<i64>(n, "label");
    cx.run(2 * (n + m), [&] {
      alg::connected_components(cx, n, eu.slice(), ev.slice(),
                                label.slice());
    });
    labels.assign(label.raw(), label.raw() + n);
  });

  size_t mismatches = 0;
  std::map<i64, size_t> sizes;
  for (size_t v = 0; v < n; ++v) {
    if (labels[v] != want[v]) ++mismatches;
    ++sizes[labels[v]];
  }
  RO_CHECK(mismatches == 0);
  std::printf("graph: n=%zu m=%zu -> %zu components (validated vs DSU)\n", n,
              m, sizes.size());
  Table t("largest components");
  t.header({"label", "vertices"});
  std::vector<std::pair<size_t, i64>> by_size;
  for (auto& [lab, sz] : sizes) by_size.push_back({sz, lab});
  std::sort(by_size.rbegin(), by_size.rend());
  for (size_t i = 0; i < std::min<size_t>(5, by_size.size()); ++i) {
    t.row({Table::num(by_size[i].second),
           Table::num(static_cast<uint64_t>(by_size[i].first))});
  }
  t.print();

  SimConfig cfg;
  cfg.p = p;
  cfg.M = 1 << 12;
  cfg.B = 32;
  const RunReport r = eng.replay(rec, Backend::kSimPws, cfg);
  std::printf("\nCC on p=%u simulated cores: speedup %.2fx, %llu block "
              "misses\n",
              p, r.sim_speedup(),
              static_cast<unsigned long long>(r.sim.block_misses()));

  // ---- Euler tour on a random tree ----
  {
    const size_t tn = n / 2 + 3;
    const auto tree = alg::random_tree(tn, 7);
    const auto ref = alg::tree_ref(tn, tree, 0);
    alg::EulerResult res;
    eng.record([&](auto& cx) {
      auto tu = cx.template alloc<i64>(tn - 1, "tu");
      auto tv = cx.template alloc<i64>(tn - 1, "tv");
      std::copy(tree.u.begin(), tree.u.end(), tu.raw());
      std::copy(tree.v.begin(), tree.v.end(), tv.raw());
      cx.run(4 * tn, [&] {
        res = alg::euler_tour(cx, tn, tu.slice(), tv.slice(), 0);
      });
    });
    i64 max_depth = 0;
    for (size_t v = 0; v < tn; ++v) {
      RO_CHECK(res.parent.raw()[v] == ref.parent[v]);
      RO_CHECK(res.depth.raw()[v] == ref.depth[v]);
      max_depth = std::max(max_depth, res.depth.raw()[v]);
    }
    std::printf("\nEuler tour on a %zu-vertex random tree: parents & depths "
                "validated (height %lld)\n",
                tn, static_cast<long long>(max_depth));
  }
  return 0;
}
